package experiment

// The live observability layer: a runner with a Progress hook armed
// streams what it is doing — time-series samples, completed responses,
// finished sweep cells, FCT distribution snapshots, retransmission
// breakdowns — while the simulation is still going. The batch runners
// never had this; the experiment service feeds its SSE streams from it.
//
// Publishing is strictly read-only with respect to the simulation: hooks
// fire from code paths that already execute (sampler Records, collector
// completions, trial returns), never from extra scheduled events, so an
// armed hook cannot perturb results — the same spec still produces
// byte-identical output, which is what makes the service's
// content-addressed result cache sound.

import (
	"sync/atomic"

	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
)

// ProgressEvent is one live observation from a running experiment.
type ProgressEvent struct {
	// Kind classifies the event:
	//   "sample"    one time-series point (Name = metric, At/Value set)
	//   "responses" completed-response count so far (Value = count)
	//   "cell"      one sweep cell or trial finished (Name, Done/Total)
	//   "fct"       completion-time distribution snapshot (Dist set)
	//   "retrans"   retransmission breakdown (Retrans set)
	Kind string `json:"kind"`
	// Name identifies the metric, cell, or protocol the event refers to.
	Name string `json:"name,omitempty"`
	// At is the simulated time of the observation in seconds.
	At float64 `json:"at,omitempty"`
	// Value is the sample value or running count.
	Value float64 `json:"value,omitempty"`
	// Done/Total track sweep-cell fan-out progress.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Dist carries a distribution snapshot for "fct" events.
	Dist *metrics.Snapshot `json:"dist,omitempty"`
	// Retrans carries the per-trigger breakdown for "retrans" events.
	Retrans *httpapp.RetransBreakdown `json:"retrans,omitempty"`
}

// Progress receives live events from a running experiment. Publish must
// be safe for concurrent use — trial fan-outs call it from worker
// goroutines and samplers from shard goroutines — and must return
// quickly (it runs on the simulation's critical path; buffer or drop,
// never block on I/O). Implementations must not touch simulation state.
type Progress interface {
	Publish(ProgressEvent)
}

// publish forwards ev to the Progress hook when one is armed.
func (o Options) publish(ev ProgressEvent) {
	if o.Progress != nil {
		o.Progress.Publish(ev)
	}
}

// interrupted returns the cancellation error once the run's Context is
// done, nil before then (and always nil without a Context). Long
// fan-out runners poll it between cells so a canceled service job stops
// simulating instead of running to the horizon.
func (o Options) interrupted() error {
	if o.Context == nil {
		return nil
	}
	select {
	case <-o.Context.Done():
		return o.Context.Err()
	default:
		return nil
	}
}

// tapSeries streams every point of s as a "sample" event under name,
// with values scaled by scale (runners convert units in-place only
// after the run; the tap converts at publish time instead). No-op
// without an armed hook, keeping the batch path untouched.
func (o Options) tapSeries(name string, scale float64, s *metrics.Series) {
	if o.Progress == nil || s == nil {
		return
	}
	p := o.Progress
	s.Tap(func(pt metrics.TimePoint) {
		p.Publish(ProgressEvent{Kind: "sample", Name: name, At: pt.At.Seconds(),
			Value: pt.Value * scale})
	})
}

// replaySeries publishes every point of an already-recorded series as
// "sample" events — the warm-path counterpart of tapSeries, used when a
// cell cache hit skips the simulation that would have streamed them
// live. Cached series already carry their reporting units, so no scale
// applies. No-op without an armed hook.
func (o Options) replaySeries(name string, s *metrics.Series) {
	if o.Progress == nil || s == nil {
		return
	}
	for _, pt := range s.Points() {
		o.Progress.Publish(ProgressEvent{Kind: "sample", Name: name,
			At: pt.At.Seconds(), Value: pt.Value})
	}
}

// tapResponses streams a running completed-response count from coll as
// "responses" events. Completions fire on shard goroutines during
// parallel windows, hence the atomic counter. No-op without a hook.
func (o Options) tapResponses(coll *httpapp.Collector) {
	if o.Progress == nil || coll == nil {
		return
	}
	p := o.Progress
	var completed atomic.Int64
	coll.Tap(func(r httpapp.Response) {
		p.Publish(ProgressEvent{Kind: "responses", At: r.Completed.Seconds(),
			Value: float64(completed.Add(1))})
	})
}

// cellCounter publishes "cell" completion events from parallel trial
// workers: done counts are claimed atomically so every event carries a
// distinct Done even when cells finish simultaneously.
type cellCounter struct {
	hook  Progress
	total int
	done  atomic.Int64
}

// cells returns a counter for a fan-out of total cells (nil-safe: with
// no hook armed the counter publishes nothing).
func (o Options) cells(total int) *cellCounter {
	return &cellCounter{hook: o.Progress, total: total}
}

// finished reports one completed cell under name.
func (c *cellCounter) finished(name string) {
	if c.hook == nil {
		return
	}
	c.hook.Publish(ProgressEvent{Kind: "cell", Name: name,
		Done: int(c.done.Add(1)), Total: c.total})
}
