package metrics

import (
	"strings"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestSeriesWriteCSV(t *testing.T) {
	var s Series
	s.Record(sim.At(time.Millisecond), 42)
	s.Record(sim.At(2*time.Millisecond), 43.5)
	var sb strings.Builder
	if err := s.WriteCSV(&sb, "mbps"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	if lines[0] != "seconds,mbps" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.001000000,42" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "0.002000000,43.5" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestDistributionWriteCSV(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	var sb strings.Builder
	if err := d.WriteCSV(&sb, "ms", 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "ms,fraction" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[10], ",1") {
		t.Errorf("last row = %q, want fraction 1", lines[10])
	}
}
