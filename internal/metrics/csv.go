package metrics

import (
	"fmt"
	"io"
)

// WriteCSV renders the series as "seconds,value" rows with a header, the
// format the experiment harness exports for plotting the paper's
// time-series figures.
func (s *Series) WriteCSV(w io.Writer, valueName string) error {
	if _, err := fmt.Fprintf(w, "seconds,%s\n", valueName); err != nil {
		return err
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%.9f,%g\n", p.At.Seconds(), p.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the distribution's empirical CDF as "value,fraction"
// rows.
func (d *Distribution) WriteCSV(w io.Writer, valueName string, points int) error {
	if _, err := fmt.Fprintf(w, "%s,fraction\n", valueName); err != nil {
		return err
	}
	for _, p := range d.CDF(points) {
		if _, err := fmt.Fprintf(w, "%g,%g\n", p.Value, p.Fraction); err != nil {
			return err
		}
	}
	return nil
}
