package metrics

// Streaming-quantile backend coverage: engagement mechanics, exactness of
// the streamed moments, and the pinned error-bound table — the sketch's
// quantiles must stay within the documented relative error of the exact
// order statistics on the same fixture.

import (
	"math"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

// sketchFixture feeds n deterministic samples spanning several orders of
// magnitude (log-uniform in [10µs, 10s], the FCT regime) to both an
// exact and a capped distribution.
func sketchFixture(n, cap int) (exact, capped *Distribution) {
	exact = &Distribution{}
	exact.SetSampleCap(-1)
	capped = &Distribution{}
	capped.SetSampleCap(cap)
	rng := sim.NewRand(1234)
	for i := 0; i < n; i++ {
		u := float64(rng.Int63()%1_000_000) / 1_000_000
		x := 1e-5 * math.Pow(1e6, u) // 10µs .. 10s, log-uniform
		exact.Add(x)
		capped.Add(x)
	}
	return exact, capped
}

func TestSketchPercentileErrorBounds(t *testing.T) {
	exact, capped := sketchFixture(50_000, 1000)
	if !capped.Sketched() {
		t.Fatal("capped distribution never engaged its sketch")
	}
	if exact.Sketched() {
		t.Fatal("uncapped distribution engaged a sketch")
	}
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		want, got := exact.Percentile(p), capped.Percentile(p)
		relErr := math.Abs(got-want) / want
		if relErr > 0.01 {
			t.Errorf("p%v: sketch %.6g vs exact %.6g (rel err %.3f%%, bound 1%%)",
				p, got, want, relErr*100)
		}
	}
	// The streamed moments never degrade.
	if capped.Count() != exact.Count() {
		t.Errorf("Count %d != %d", capped.Count(), exact.Count())
	}
	if capped.Min() != exact.Min() || capped.Max() != exact.Max() {
		t.Errorf("Min/Max drifted: %g/%g vs %g/%g",
			capped.Min(), capped.Max(), exact.Min(), exact.Max())
	}
	if math.Abs(capped.Mean()-exact.Mean()) > 1e-12*exact.Mean() {
		t.Errorf("Mean %g != %g", capped.Mean(), exact.Mean())
	}
}

// TestSketchPinnedTable pins exact sketch outputs on a tiny fixed input:
// any change to the bucket mapping or rank walk shows up here first.
func TestSketchPinnedTable(t *testing.T) {
	d := &Distribution{}
	d.SetSampleCap(4)
	for _, ms := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		d.AddDuration(time.Duration(ms * float64(time.Millisecond)))
	}
	if !d.Sketched() {
		t.Fatal("sketch not engaged at cap 4")
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		// 8ms = 0.512 × 2^-6 → sub-bucket 1 of octave -6, midpoint
		// (0.5078125 + 0.515625)/2 × 2^-6 = 0.00799560546875; 32ms lands
		// in the same sub-bucket two octaves up.
		{0, 0.001},
		{50, 0.00799560546875}, // rank 3.5 → floor 3 → bucket of 8ms
		{100, 0.128},
		{75, 0.031982421875}, // rank 5.25 → bucket of 32ms
	} {
		got := d.Percentile(tc.p)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("p%v = %.9f, want %.9f", tc.p, got, tc.want)
		}
	}
	if got := d.FractionBelow(0.009); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FractionBelow(9ms) = %v, want 0.5", got)
	}
	cdf := d.CDF(4)
	if len(cdf) != 4 {
		t.Fatalf("CDF len %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Errorf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
	if cdf[3].Fraction != 1 {
		t.Errorf("final CDF fraction %v", cdf[3].Fraction)
	}
}

func TestSketchDefaultCapEngages(t *testing.T) {
	d := &Distribution{}
	for i := 0; i < DefaultSampleCap-1; i++ {
		d.Add(float64(i + 1))
	}
	if d.Sketched() {
		t.Fatal("engaged below the default cap")
	}
	d.Add(1)
	if !d.Sketched() {
		t.Fatal("did not engage at the default cap")
	}
	d.Add(5)
	if d.Count() != DefaultSampleCap+1 {
		t.Errorf("Count = %d", d.Count())
	}
}

func TestSketchNonPositiveSamples(t *testing.T) {
	d := &Distribution{}
	d.SetSampleCap(2)
	for _, x := range []float64{0, 0, 1, 2, 3, 4} {
		d.Add(x)
	}
	if got := d.Percentile(0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	// Ranks inside the non-positive block report the exact minimum.
	if got := d.Percentile(10); got != 0 {
		t.Errorf("p10 = %v, want 0 (non-positive block)", got)
	}
	if got := d.Percentile(100); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := d.FractionBelow(-1); got != 0 {
		t.Errorf("FractionBelow(-1) = %v", got)
	}
}

// TestSketchDeterministicAcrossInsertOrder: same multiset, different
// order → identical quantiles (reservoir sampling could not promise
// this; the histogram must).
func TestSketchDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := &Distribution{}, &Distribution{}
	a.SetSampleCap(10)
	b.SetSampleCap(10)
	n := 5000
	for i := 0; i < n; i++ {
		x := 1e-4 * float64(i+1)
		a.Add(x)
		b.Add(1e-4 * float64(n-i))
	}
	for _, p := range []float64{5, 50, 95, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Errorf("p%v order-dependent: %v vs %v", p, a.Percentile(p), b.Percentile(p))
		}
	}
}
