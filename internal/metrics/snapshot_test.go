package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

// fillDeterministic adds n pseudo-random (but fixed-sequence) samples
// spanning several orders of magnitude, including exact-duplicate and
// non-positive values, so both snapshot backends see their edge cases.
func fillDeterministic(d *Distribution, n int) {
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		switch i % 97 {
		case 0:
			d.Add(0) // non-positive: exercises the sketch's nonpos rank
		case 1:
			d.Add(42.5) // repeated exact value
		default:
			// Magnitudes from ~1e-6 to ~1e3.
			d.Add(math.Ldexp(1+float64(state%4096)/4096, int(state%30)-20))
		}
	}
}

// roundTrip encodes the snapshot to JSON and decodes it back — the exact
// path service results and SSE events take.
func roundTrip(t *testing.T, d *Distribution) *Distribution {
	t.Helper()
	raw, err := json.Marshal(d.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatalf("restore snapshot: %v", err)
	}
	return restored
}

// assertIdentical pins that the restored distribution reports the exact
// same values (bit for bit, no tolerance) for every query the service
// renders.
func assertIdentical(t *testing.T, want, got *Distribution) {
	t.Helper()
	if want.Count() != got.Count() {
		t.Fatalf("count: want %d, got %d", want.Count(), got.Count())
	}
	if want.Sketched() != got.Sketched() {
		t.Fatalf("sketched: want %t, got %t", want.Sketched(), got.Sketched())
	}
	for name, pair := range map[string][2]float64{
		"mean": {want.Mean(), got.Mean()},
		"min":  {want.Min(), got.Min()},
		"max":  {want.Max(), got.Max()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: want %v, got %v", name, pair[0], pair[1])
		}
	}
	for _, p := range []float64{0, 0.1, 1, 25, 50, 75, 90, 99, 99.9, 100} {
		if w, g := want.Percentile(p), got.Percentile(p); w != g {
			t.Errorf("p%v: want %v, got %v", p, w, g)
		}
	}
	for _, x := range []float64{0, 0.001, 1, 42.5, 1000} {
		if w, g := want.FractionBelow(x), got.FractionBelow(x); w != g {
			t.Errorf("fractionBelow(%v): want %v, got %v", x, w, g)
		}
	}
	wc, gc := want.CDF(64), got.CDF(64)
	if len(wc) != len(gc) {
		t.Fatalf("cdf length: want %d, got %d", len(wc), len(gc))
	}
	for i := range wc {
		if wc[i] != gc[i] {
			t.Errorf("cdf[%d]: want %+v, got %+v", i, wc[i], gc[i])
		}
	}
}

// TestSnapshotRoundTripAcrossSampleCap pins the exact↔sketch boundary:
// one sample under the cap (exact backend), at the cap (the Add that
// engages the sketch), and one past it. A snapshot decoded by the
// service must report identical percentiles in all three regimes.
func TestSnapshotRoundTripAcrossSampleCap(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n        int
		sketched bool
	}{
		{"under-cap", DefaultSampleCap - 1, false},
		{"at-cap", DefaultSampleCap, true},
		{"above-cap", DefaultSampleCap + 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var d Distribution
			fillDeterministic(&d, tc.n)
			if d.Sketched() != tc.sketched {
				t.Fatalf("at n=%d: sketched = %t, want %t", tc.n, d.Sketched(), tc.sketched)
			}
			assertIdentical(t, &d, roundTrip(t, &d))
		})
	}
}

// TestSnapshotRoundTripSmall covers tiny exact distributions (the
// common case for figure-scale FCT collections) including n=1.
func TestSnapshotRoundTripSmall(t *testing.T) {
	for _, n := range []int{1, 2, 7, 1000} {
		var d Distribution
		fillDeterministic(&d, n)
		assertIdentical(t, &d, roundTrip(t, &d))
	}
}

// TestSnapshotRestoreAcceptsFurtherAdds: a restored distribution is
// live — Adds keep working and queries stay consistent.
func TestSnapshotRestoreAcceptsFurtherAdds(t *testing.T) {
	var d Distribution
	fillDeterministic(&d, 100)
	r := roundTrip(t, &d)
	d.Add(7)
	r.Add(7)
	assertIdentical(t, &d, r)
}

// TestSnapshotRestoreRejectsMalformed pins the validation: corrupt
// snapshots error out instead of misreporting.
func TestSnapshotRestoreRejectsMalformed(t *testing.T) {
	cases := map[string]Snapshot{
		"count-mismatch": {Count: 3, Samples: []float64{1, 2}},
		"both-backends": {Count: 1, Samples: []float64{1},
			Sketch: &SketchSnapshot{Total: 1}},
		"sketch-total-mismatch": {Count: 2, Sketch: &SketchSnapshot{Total: 3}},
		"bucket-out-of-range": {Count: 1, Sketch: &SketchSnapshot{Total: 1,
			Buckets: []SketchBucket{{Index: sketchBuckets, Count: 1}}}},
		"negative-bucket-count": {Count: 1, Sketch: &SketchSnapshot{Total: 1,
			Buckets: []SketchBucket{{Index: 0, Count: -1}}}},
	}
	for name, snap := range cases {
		if _, err := snap.Restore(); err == nil {
			t.Errorf("%s: Restore accepted a malformed snapshot", name)
		}
	}
}

// TestSeriesTap: the tap observes every Record with the recorded values,
// and an untapped series is unaffected.
func TestSeriesTap(t *testing.T) {
	var s Series
	var seen []TimePoint
	s.Tap(func(p TimePoint) { seen = append(seen, p) })
	s.Record(1, 10)
	s.Record(2, 20)
	if len(seen) != 2 || seen[0] != (TimePoint{At: 1, Value: 10}) ||
		seen[1] != (TimePoint{At: 2, Value: 20}) {
		t.Fatalf("tap saw %+v", seen)
	}
	if len(s.Points()) != 2 {
		t.Fatalf("series kept %d points", len(s.Points()))
	}
}
