package metrics

// Snapshot is the serializable capture of a Distribution — the wire
// format the experiment service streams over SSE and stores in its
// result cache. It is exact on both sides of the sample cap: below the
// cap the sorted raw samples travel verbatim, above it the log-linear
// sketch's occupied buckets do. Either way a decoded snapshot answers
// Count/Mean/Min/Max/Percentile/CDF queries identically to the source
// distribution at capture time: Go's encoding/json emits the shortest
// float64 representation that parses back to the same bits, so nothing
// is lost in transit.

import (
	"fmt"
	"sort"
)

// Snapshot is a self-contained capture of a Distribution's state.
type Snapshot struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Samples carries the sorted raw samples while the distribution is
	// exact; nil once the sketch has engaged.
	Samples []float64 `json:"samples,omitempty"`
	// Sketch carries the folded histogram once the sample cap was
	// crossed.
	Sketch *SketchSnapshot `json:"sketch,omitempty"`
}

// SketchSnapshot serializes the log-linear quantile sketch sparsely:
// only occupied buckets travel (a 1M-sample FCT sketch occupies a few
// hundred of the ~7.7k buckets).
type SketchSnapshot struct {
	// NonPos counts samples ≤ 0 (they rank below every bucket).
	NonPos int64 `json:"nonpos"`
	// Total is the sketch's total sample count, NonPos included.
	Total int64 `json:"total"`
	// Buckets lists occupied buckets in ascending index order.
	Buckets []SketchBucket `json:"buckets"`
}

// SketchBucket is one occupied histogram bucket.
type SketchBucket struct {
	Index int   `json:"i"`
	Count int64 `json:"n"`
}

// Snapshot captures the distribution's current state. The receiver is
// left fully sorted (queries were about to pay for that anyway), so
// taking a snapshot never perturbs later query results.
func (d *Distribution) Snapshot() *Snapshot {
	s := &Snapshot{Count: d.n, Sum: d.sum, Min: d.min, Max: d.max}
	if d.sketch != nil {
		sk := &SketchSnapshot{NonPos: d.sketch.nonpos, Total: d.sketch.n}
		for b, c := range d.sketch.counts {
			if c != 0 {
				sk.Buckets = append(sk.Buckets, SketchBucket{Index: b, Count: c})
			}
		}
		s.Sketch = sk
		return s
	}
	d.ensureSorted()
	s.Samples = append([]float64(nil), d.samples...)
	return s
}

// Restore rebuilds a Distribution answering every query identically to
// the snapshot's source at capture time. The result accepts further
// Adds; the default sample cap applies from there. Malformed snapshots
// (bucket indices out of range, count mismatches) are rejected rather
// than silently misreporting.
func (s *Snapshot) Restore() (*Distribution, error) {
	if s.Sketch != nil && s.Samples != nil {
		return nil, fmt.Errorf("metrics: snapshot carries both samples and sketch")
	}
	d := &Distribution{n: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	if s.Sketch != nil {
		if s.Sketch.Total != int64(s.Count) {
			return nil, fmt.Errorf("metrics: sketch total %d != snapshot count %d",
				s.Sketch.Total, s.Count)
		}
		sk := newQuantileSketch()
		sk.nonpos = s.Sketch.NonPos
		sk.n = s.Sketch.Total
		for _, b := range s.Sketch.Buckets {
			if b.Index < 0 || b.Index >= len(sk.counts) {
				return nil, fmt.Errorf("metrics: sketch bucket index %d out of range [0, %d)",
					b.Index, len(sk.counts))
			}
			if b.Count < 0 {
				return nil, fmt.Errorf("metrics: sketch bucket %d has negative count %d",
					b.Index, b.Count)
			}
			sk.counts[b.Index] = b.Count
		}
		d.sketch = sk
		return d, nil
	}
	if len(s.Samples) != s.Count {
		return nil, fmt.Errorf("metrics: snapshot has %d samples but count %d",
			len(s.Samples), s.Count)
	}
	d.samples = append([]float64(nil), s.Samples...)
	if sort.Float64sAreSorted(d.samples) {
		d.sorted = len(d.samples)
	}
	// Unsorted samples (a hand-built snapshot) are legal: they are
	// treated as an unsorted tail and ordered on the first query.
	return d, nil
}
