package metrics

// Bounded streaming quantiles. Distribution retains raw samples — exact,
// but O(n) memory, which a million-connection FCT collection cannot
// afford. Above a sample cap it folds everything into a deterministic
// log-linear histogram: 64 subbuckets per power of two, so every bucket
// spans a 2^(1/64) ≈ 1.1% relative range and reporting the bucket
// midpoint bounds the relative error of any quantile of positive samples
// by about 0.55% (subBuckets controls the trade; memory is a fixed
// ~60 KB per engaged distribution regardless of sample count). The
// mapping is pure float arithmetic — no randomness, no data-dependent
// layout — so sketched output is bit-reproducible across runs and shard
// counts, unlike reservoir sampling, and unlike P² it answers arbitrary
// quantiles after the fact.

import "math"

const (
	// subBits: log2 of subbuckets per octave.
	subBits  = 6
	subCount = 1 << subBits
	subMask  = subCount - 1
	// sketchMinExp / sketchMaxExp clamp the tracked magnitude range to
	// [2^-60, 2^60] ≈ [8.7e-19, 1.2e18]; samples outside collapse into
	// the edge octaves (min/max stay exact regardless).
	sketchMinExp  = -60
	sketchMaxExp  = 60
	sketchBuckets = (sketchMaxExp - sketchMinExp + 1) * subCount
)

// quantileSketch is the engaged backend: counts per log-linear bucket for
// positive samples, plus an exact count of non-positive ones (they all
// rank below every positive bucket; queries landing there report the
// exact minimum).
type quantileSketch struct {
	counts []int64
	nonpos int64
	n      int64
}

func newQuantileSketch() *quantileSketch {
	return &quantileSketch{counts: make([]int64, sketchBuckets)}
}

func (s *quantileSketch) add(x float64) {
	s.n++
	if x <= 0 || math.IsNaN(x) {
		s.nonpos++
		return
	}
	s.counts[sketchBucketOf(x)]++
}

// sketchBucketOf maps a positive sample to its bucket index.
func sketchBucketOf(x float64) int {
	frac, exp := math.Frexp(x) // x = frac × 2^exp, frac ∈ [0.5, 1)
	if exp < sketchMinExp {
		return 0
	}
	if exp > sketchMaxExp {
		return sketchBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * subCount))
	if sub > subMask {
		sub = subMask
	}
	return (exp-sketchMinExp)<<subBits | sub
}

// sketchRep returns the representative value (bucket midpoint) of bucket b.
func sketchRep(b int) float64 {
	exp := b>>subBits + sketchMinExp
	sub := b & subMask
	lo := math.Ldexp(0.5+float64(sub)/(2*subCount), exp)
	hi := math.Ldexp(0.5+float64(sub+1)/(2*subCount), exp)
	return (lo + hi) / 2
}

// rank returns the value at 0-based rank r (0 ≤ r < n): non-positive
// ranks report lo (the exact minimum); results clamp into [lo, hi].
func (s *quantileSketch) rank(r int64, lo, hi float64) float64 {
	if r < s.nonpos {
		return lo
	}
	c := s.nonpos
	for b, cnt := range s.counts {
		c += cnt
		if c > r {
			v := sketchRep(b)
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return v
		}
	}
	return hi
}

// fractionBelow returns the approximate fraction of samples ≤ x: whole
// buckets strictly below x's bucket count fully, x's own bucket counts
// when x is at or above its midpoint.
func (s *quantileSketch) fractionBelow(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	c := int64(0)
	if x >= 0 {
		c = s.nonpos
	}
	if x > 0 {
		bx := sketchBucketOf(x)
		for b := 0; b < bx; b++ {
			c += s.counts[b]
		}
		if x >= sketchRep(bx) {
			c += s.counts[bx]
		}
	}
	return float64(c) / float64(s.n)
}
