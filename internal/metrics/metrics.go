// Package metrics provides the measurement helpers the experiment harness
// uses: streaming summaries (Welford), sample distributions with
// percentiles and CDFs, time-binned series for throughput, and a periodic
// sampler for queue lengths and window traces.
package metrics

import (
	"encoding/json"
	"math"
	"sort"
	"time"

	"tcptrim/internal/sim"
)

// Summary accumulates streaming statistics without retaining samples.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Std returns the sample standard deviation (0 for n < 2).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// DefaultSampleCap is the sample count beyond which a Distribution stops
// retaining raw samples and folds into the bounded streaming-quantile
// sketch (see sketch.go). Every reproduced figure stays far below it, so
// pinned outputs remain exact and byte-identical; million-connection FCT
// collections cross it and pay ≤ ~0.6% relative quantile error for O(1)
// memory.
const DefaultSampleCap = 1 << 16

// Distribution retains samples for percentile and CDF queries. Order
// statistics are maintained incrementally: the sorted prefix survives
// across queries, and samples added since the last query are sorted and
// merged in on demand (O(k log k + n) for k new samples rather than a full
// O(n log n) re-sort). Sum, min, and max are tracked streaming, so Mean,
// Min, and Max never sort at all — the experiment summary stages
// interleave Adds and queries heavily, which made re-sorting hot.
//
// Beyond the sample cap (SetSampleCap; DefaultSampleCap when unset) the
// raw samples fold into a deterministic log-linear histogram and memory
// stops growing: quantile queries then carry a small bounded relative
// error while Count, Mean, Min, and Max stay exact.
type Distribution struct {
	samples []float64
	// sorted is the length of the sorted prefix of samples.
	sorted int
	// scratch is the merge buffer for ensureSorted, reused across queries.
	scratch  []float64
	n        int
	sum      float64
	min, max float64
	// capHint is the configured sample cap: 0 means DefaultSampleCap,
	// negative means never engage the sketch.
	capHint int
	sketch  *quantileSketch
}

// SetSampleCap bounds retained samples: crossing cap switches the
// distribution to the streaming sketch. cap <= 0 disables the bound
// (exact forever). Call before samples accumulate; lowering the cap
// below the current count engages on the next Add.
func (d *Distribution) SetSampleCap(cap int) {
	if cap <= 0 {
		d.capHint = -1
		return
	}
	d.capHint = cap
}

// Sketched reports whether the distribution has folded into the bounded
// sketch (quantiles approximate, memory bounded).
func (d *Distribution) Sketched() bool { return d.sketch != nil }

// Add appends one sample.
func (d *Distribution) Add(x float64) {
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.sum += x
	d.n++
	if d.sketch != nil {
		d.sketch.add(x)
		return
	}
	d.samples = append(d.samples, x)
	cap := d.capHint
	if cap == 0 {
		cap = DefaultSampleCap
	}
	if cap > 0 && len(d.samples) >= cap {
		d.engageSketch()
	}
}

// engageSketch folds the retained samples into the histogram and frees
// them; from here on memory is O(1) in the sample count.
func (d *Distribution) engageSketch() {
	d.sketch = newQuantileSketch()
	for _, x := range d.samples {
		d.sketch.add(x)
	}
	d.samples = nil
	d.scratch = nil
	d.sorted = 0
}

// AddDuration appends a duration sample in seconds.
func (d *Distribution) AddDuration(v time.Duration) { d.Add(v.Seconds()) }

// Count returns the number of samples.
func (d *Distribution) Count() int { return d.n }

// Mean returns the sample mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 when empty).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample (0 when empty).
func (d *Distribution) Max() float64 { return d.max }

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between the two closest order statistics (the
// "exclusive" variant with rank p/100 × (n−1), as used by numpy's
// default and Excel's PERCENTILE.INC): p0 is the minimum, p100 the
// maximum, and p50 of an even-sized sample is the average of the two
// middle values. Returns 0 when empty.
func (d *Distribution) Percentile(p float64) float64 {
	if d.n == 0 {
		return 0
	}
	if d.sketch != nil {
		if p <= 0 {
			return d.min
		}
		if p >= 100 {
			return d.max
		}
		// Bucket resolution is far below interpolation resolution, so the
		// sketch answers with the bucket holding the floor of the rank.
		return d.sketch.rank(int64(p/100*float64(d.n-1)), d.min, d.max)
	}
	d.ensureSorted()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := p / 100 * float64(len(d.samples)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(d.samples) {
		return d.samples[lo]
	}
	return d.samples[lo]*(1-frac) + d.samples[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF at up to points evenly spaced ranks.
func (d *Distribution) CDF(points int) []CDFPoint {
	n := d.n
	if n == 0 || points <= 0 {
		return nil
	}
	if d.sketch != nil {
		if points > n {
			points = n
		}
		out := make([]CDFPoint, 0, points)
		for i := 1; i <= points; i++ {
			idx := i*n/points - 1
			out = append(out, CDFPoint{
				Value:    d.sketch.rank(int64(idx), d.min, d.max),
				Fraction: float64(idx+1) / float64(n),
			})
		}
		return out
	}
	d.ensureSorted()
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*n/points - 1
		out = append(out, CDFPoint{
			Value:    d.samples[idx],
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// FractionBelow returns the fraction of samples ≤ x.
func (d *Distribution) FractionBelow(x float64) float64 {
	if d.n == 0 {
		return 0
	}
	if d.sketch != nil {
		switch {
		case x < d.min:
			return 0
		case x >= d.max:
			return 1
		}
		return d.sketch.fractionBelow(x)
	}
	d.ensureSorted()
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(d.samples))
}

// ensureSorted restores full sorted order by sorting only the unsorted
// tail and merging it into the sorted prefix.
func (d *Distribution) ensureSorted() {
	n := len(d.samples)
	if d.sorted == n {
		return
	}
	tail := d.samples[d.sorted:]
	sort.Float64s(tail)
	if d.sorted > 0 {
		// Forward merge of (prefix copy, tail) into samples. Writing index
		// k = i+j never overtakes the unread tail element at sorted+j
		// while the prefix copy still has elements (i < sorted), so the
		// in-place merge is safe without copying the tail.
		d.scratch = append(d.scratch[:0], d.samples[:d.sorted]...)
		i, j, k := 0, 0, 0
		for i < len(d.scratch) && j < len(tail) {
			if d.scratch[i] <= tail[j] {
				d.samples[k] = d.scratch[i]
				i++
			} else {
				d.samples[k] = tail[j]
				j++
			}
			k++
		}
		copy(d.samples[k:], d.scratch[i:])
	}
	d.sorted = n
}

// TimePoint is one (time, value) observation.
type TimePoint struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series of observations.
type Series struct {
	points []TimePoint
	tap    func(TimePoint)
}

// Tap registers fn to observe every subsequent Record as it happens —
// the live-streaming hook the experiment service uses to forward
// sampler output while a run is still simulating. One tap per series;
// set it before the simulation starts. fn runs on whichever goroutine
// records (a shard's, under PDES), so it must be safe for concurrent
// use with taps on other series and must never touch simulation state.
func (s *Series) Tap(fn func(TimePoint)) { s.tap = fn }

// Record appends an observation.
func (s *Series) Record(at sim.Time, v float64) {
	s.points = append(s.points, TimePoint{At: at, Value: v})
	if s.tap != nil {
		s.tap(TimePoint{At: at, Value: v})
	}
}

// Points returns the recorded observations (shared slice; callers must
// not mutate it).
func (s *Series) Points() []TimePoint { return s.points }

// MarshalJSON encodes the recorded points as a JSON array — the wire and
// cell-cache format for series-bearing results. The round trip is exact:
// sim.Time is an int64 and Value a float64, both of which encoding/json
// reproduces bit for bit (full-precision integers, shortest
// representation floats), so a decoded series renders byte-identically
// to the original.
func (s *Series) MarshalJSON() ([]byte, error) {
	if s.points == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.points)
}

// UnmarshalJSON restores a series encoded by MarshalJSON. Any tap is
// cleared: a decoded series is a record, not a live sampler.
func (s *Series) UnmarshalJSON(b []byte) error {
	s.tap = nil
	s.points = nil
	return json.Unmarshal(b, &s.points)
}

// Max returns the largest recorded value (0 when empty).
func (s *Series) Max() float64 {
	var out float64
	for i, p := range s.points {
		if i == 0 || p.Value > out {
			out = p.Value
		}
	}
	return out
}

// Mean returns the mean of the recorded values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Sample registers a periodic sampler on sched: every interval from start
// until end it records fn() into a Series.
func Sample(sched *sim.Scheduler, start, end sim.Time, interval time.Duration, fn func() float64) *Series {
	out := &Series{}
	if interval <= 0 || end < start {
		return out
	}
	var tick func()
	tick = func() {
		now := sched.Now()
		out.Record(now, fn())
		if next := now.Add(interval); next <= end {
			sched.After(interval, tick)
		}
	}
	// Tolerate a start in the past by beginning at the current instant.
	if _, err := sched.At(start, tick); err != nil {
		sched.After(0, tick)
	}
	return out
}

// BinnedRate converts cumulative byte counts sampled over time into a
// per-bin throughput series in bits per second. fn must return a
// monotonically nondecreasing cumulative count. When the window [start,
// end] is not an exact multiple of bin, the trailing partial bin is
// still recorded (at end, scaled by its actual width), so no bytes
// observed inside the window are ever dropped from the series.
func BinnedRate(sched *sim.Scheduler, start, end sim.Time, bin time.Duration, fn func() int64) *Series {
	out := &Series{}
	if bin <= 0 || end < start {
		return out
	}
	var prev int64
	var prevAt sim.Time
	first := true
	var tick func()
	tick = func() {
		now := sched.Now()
		cur := fn()
		if first {
			prev, prevAt, first = cur, now, false
		} else {
			bits := float64(cur-prev) * 8
			// Full bins have width == bin exactly (the scheduler fires
			// on integer nanoseconds); only the final partial bin is
			// scaled by a shorter width.
			width := now.Sub(prevAt)
			out.Record(now, bits/width.Seconds())
			prev, prevAt = cur, now
		}
		if next := now.Add(bin); next <= end {
			sched.After(bin, tick)
		} else if now < end {
			// Trailing partial bin: bytes arriving after the last full
			// bin boundary must still appear in the series.
			sched.After(end.Sub(now), tick)
		}
	}
	if _, err := sched.At(start, tick); err != nil {
		sched.After(0, tick)
	}
	return out
}
