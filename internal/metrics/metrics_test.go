package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"tcptrim/internal/sim"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample std of that classic set is sqrt(32/7) ≈ 2.138.
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-9 {
		t.Errorf("Std = %v", s.Std())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Count() != 0 {
		t.Error("empty summary must be all zeros")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 || s.Std() != 0 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Summary
		var sum float64
		for _, x := range xs {
			// Constrain magnitude for numeric comparability.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			s.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return s.Count() == 0
		}
		naive := sum / float64(len(xs))
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistributionPercentiles(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := d.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v", got)
	}
	if got := d.Percentile(99); math.Abs(got-99.01) > 0.1 {
		t.Errorf("P99 = %v", got)
	}
	if d.Min() != 1 || d.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
}

func TestDistributionCDF(t *testing.T) {
	var d Distribution
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	cdf := d.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if cdf[9].Fraction != 1 {
		t.Errorf("last fraction = %v", cdf[9].Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var d Distribution
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	if got := d.FractionBelow(5); got != 0.5 {
		t.Errorf("FractionBelow(5) = %v", got)
	}
	if got := d.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
	if got := d.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %v", got)
	}
}

func TestDistributionAddAfterQuery(t *testing.T) {
	var d Distribution
	d.Add(10)
	_ = d.Percentile(50)
	d.Add(1) // must re-sort lazily
	if d.Min() != 1 {
		t.Errorf("Min after late add = %v", d.Min())
	}
}

func TestDistributionInterleavedMatchesNaive(t *testing.T) {
	// Heavy Add/query interleaving exercises the incremental tail-merge:
	// every query must see exactly what a from-scratch sort would.
	rng := rand.New(rand.NewSource(11))
	var d Distribution
	var naive []float64
	for round := 0; round < 50; round++ {
		k := 1 + rng.Intn(20)
		for j := 0; j < k; j++ {
			x := rng.NormFloat64() * 100
			d.Add(x)
			naive = append(naive, x)
		}
		ref := append([]float64(nil), naive...)
		sort.Float64s(ref)
		for _, p := range []float64{0, 25, 50, 90, 99, 100} {
			want := naivePercentile(ref, p)
			if got := d.Percentile(p); math.Abs(got-want) > 1e-9 {
				t.Fatalf("round %d: P%v = %v, want %v", round, p, got, want)
			}
		}
		if got, want := d.Min(), ref[0]; got != want {
			t.Fatalf("round %d: Min = %v, want %v", round, got, want)
		}
		if got, want := d.Max(), ref[len(ref)-1]; got != want {
			t.Fatalf("round %d: Max = %v, want %v", round, got, want)
		}
		var sum float64
		for _, x := range ref {
			sum += x
		}
		if got, want := d.Mean(), sum/float64(len(ref)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("round %d: Mean = %v, want %v", round, got, want)
		}
		if got, want := d.FractionBelow(0), fracBelow(ref, 0); got != want {
			t.Fatalf("round %d: FractionBelow(0) = %v, want %v", round, got, want)
		}
	}
}

func naivePercentile(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func fracBelow(sorted []float64, x float64) float64 {
	n := 0
	for _, v := range sorted {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(sorted))
}

func TestSamplePeriodic(t *testing.T) {
	sched := sim.NewScheduler()
	v := 0.0
	series := Sample(sched, sim.At(10*time.Millisecond), sim.At(50*time.Millisecond),
		10*time.Millisecond, func() float64 { v++; return v })
	sched.Run()
	pts := series.Points()
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[0].At != sim.At(10*time.Millisecond) || pts[4].At != sim.At(50*time.Millisecond) {
		t.Errorf("sample times wrong: %v .. %v", pts[0].At, pts[4].At)
	}
	if series.Max() != 5 || series.Mean() != 3 {
		t.Errorf("Max/Mean = %v/%v", series.Max(), series.Mean())
	}
}

func TestBinnedRate(t *testing.T) {
	sched := sim.NewScheduler()
	var bytes int64
	// Produce 1250 bytes per ms = 10 Mbps, offset to mid-bin so the
	// result is insensitive to same-instant event ordering.
	var feed func()
	feed = func() {
		bytes += 1250
		if sched.Now() < sim.At(9*time.Millisecond) {
			sched.After(time.Millisecond, feed)
		}
	}
	sched.After(500*time.Microsecond, feed)
	series := BinnedRate(sched, 0, sim.At(10*time.Millisecond), time.Millisecond,
		func() int64 { return bytes })
	sched.Run()
	pts := series.Points()
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	for _, p := range pts[1:] {
		if math.Abs(p.Value-10e6) > 1 {
			t.Fatalf("rate = %v, want 10 Mbps", p.Value)
		}
	}
}

func TestBinnedRateTrailingPartialBin(t *testing.T) {
	// Regression: bytes arriving after the last full bin boundary used
	// to be silently dropped, biasing short-run throughput low. With a
	// 25 ms window over 10 ms bins, the [20 ms, 25 ms) bytes must appear
	// as a final partial bin scaled by its 5 ms width.
	sched := sim.NewScheduler()
	var bytes int64
	var feed func()
	feed = func() {
		bytes += 1250 // 1250 B/ms = 10 Mbps
		if sched.Now() < sim.At(24*time.Millisecond) {
			sched.After(time.Millisecond, feed)
		}
	}
	sched.After(500*time.Microsecond, feed)
	series := BinnedRate(sched, 0, sim.At(25*time.Millisecond), 10*time.Millisecond,
		func() int64 { return bytes })
	sched.Run()
	pts := series.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (two full bins plus the partial)", len(pts))
	}
	last := pts[len(pts)-1]
	if last.At != sim.At(25*time.Millisecond) {
		t.Errorf("partial bin recorded at %v, want 25ms", last.At)
	}
	// The partial bin holds 5 ms of a 10 Mbps stream.
	if math.Abs(last.Value-10e6) > 1 {
		t.Errorf("partial-bin rate = %v, want 10 Mbps", last.Value)
	}
	// Mass conservation: Σ rate×width recovers every observed bit.
	var recovered float64
	prevAt := sim.At(0)
	for _, p := range pts {
		recovered += p.Value * p.At.Sub(prevAt).Seconds()
		prevAt = p.At
	}
	if want := float64(bytes) * 8; math.Abs(recovered-want) > 1 {
		t.Errorf("recovered %v bits, want %v — bytes dropped from the series", recovered, want)
	}
}

func TestBinnedRateExactWindowHasNoExtraPoint(t *testing.T) {
	// A window that is an exact multiple of the bin must produce the
	// same series as before the partial-bin fix: no zero-width tick at
	// the end, identical full-bin values.
	sched := sim.NewScheduler()
	var bytes int64
	var feed func()
	feed = func() {
		bytes += 1250
		if sched.Now() < sim.At(19*time.Millisecond) {
			sched.After(time.Millisecond, feed)
		}
	}
	sched.After(500*time.Microsecond, feed)
	series := BinnedRate(sched, 0, sim.At(20*time.Millisecond), 10*time.Millisecond,
		func() int64 { return bytes })
	sched.Run()
	pts := series.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (two full bins, no zero-width tail)", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Value-10e6) > 1 {
			t.Errorf("rate at %v = %v, want 10 Mbps", p.At, p.Value)
		}
	}
}

func TestPercentileInterpolationPinned(t *testing.T) {
	// Pins the documented behavior: linear interpolation between the
	// two closest order statistics at rank p/100 × (n−1).
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"p0 is the minimum", []float64{30, 10, 20}, 0, 10},
		{"p100 is the maximum", []float64{30, 10, 20}, 100, 30},
		{"p50 odd n is the median", []float64{30, 10, 20}, 50, 20},
		{"p50 even n averages the middle pair", []float64{40, 10, 30, 20}, 50, 25},
		{"p25 interpolates", []float64{10, 20, 30, 40}, 25, 17.5},
		{"p99 of 1..100", seq(1, 100), 99, 99.01},
		{"p99 of 1..101 lands on a rank", seq(1, 101), 99, 100},
		{"single sample at any p", []float64{7}, 50, 7},
		{"clamp below", []float64{1, 2}, -5, 1},
		{"clamp above", []float64{1, 2}, 200, 2},
	}
	for _, tc := range cases {
		var d Distribution
		for _, v := range tc.samples {
			d.Add(v)
		}
		if got := d.Percentile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: P%v = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}
