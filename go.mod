module tcptrim

go 1.22
