package tcptrim_test

import (
	"testing"
	"time"

	"tcptrim"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	sched := tcptrim.NewScheduler()
	star := tcptrim.NewStar(sched, 3, tcptrim.DefaultStarLink(100))
	fleet, err := tcptrim.NewFleet(star.Net, tcptrim.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcptrim.CongestionControl {
			return tcptrim.NewTrim(tcptrim.TrimConfig{})
		},
		Base: tcptrim.ConnConfig{LinkRate: tcptrim.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, srv := range fleet.Servers {
		conn := srv.Conn()
		if _, err := sched.At(tcptrim.Time(time.Millisecond), func() {
			conn.SendTrain(50<<10, func(tcptrim.TrainResult) { done++ })
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntil(tcptrim.Time(time.Second))
	if done != 3 {
		t.Fatalf("completed %d of 3 transfers", done)
	}
	if fleet.TotalTimeouts() != 0 {
		t.Errorf("timeouts = %d", fleet.TotalTimeouts())
	}
}

// TestFacadePolicyConstructors verifies every exported policy constructor
// yields a working, named policy.
func TestFacadePolicyConstructors(t *testing.T) {
	policies := map[string]tcptrim.CongestionControl{
		"TCP":      tcptrim.NewReno(),
		"TCP-TRIM": tcptrim.NewTrim(tcptrim.TrimConfig{}),
		"CUBIC":    tcptrim.NewCubic(),
		"DCTCP":    tcptrim.NewDCTCP(),
		"L2DCT":    tcptrim.NewL2DCT(),
		"GIP":      tcptrim.NewGIP(),
		"Vegas":    tcptrim.NewVegas(),
		"D2TCP":    tcptrim.NewD2TCP(tcptrim.Time(time.Second), 1<<20),
	}
	for want, p := range policies {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestFacadeGuidelineK(t *testing.T) {
	k := tcptrim.GuidelineKForLink(tcptrim.Gbps, 1500, 225*time.Microsecond)
	if k < 225*time.Microsecond || k > time.Millisecond {
		t.Errorf("GuidelineK = %v", k)
	}
	if tcptrim.GuidelineK(83333, 225*time.Microsecond) != k {
		t.Error("GuidelineK and GuidelineKForLink disagree")
	}
}
