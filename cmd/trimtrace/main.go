// Command trimtrace runs the paper's packet-train analysis (Section II.A,
// Fig. 1 and Fig. 2 methodology) over a packet trace: trains are split at
// inter-packet gaps exceeding a threshold, then classified into short and
// long trains and summarized.
//
// Input format: one packet per line, "<time> <bytes>", where <time> is a
// Go duration (e.g. "150us", "1.2ms") or a plain number of microseconds.
// Lines starting with '#' are ignored. Reads stdin or the file named by
// -in. With -demo, analyzes a synthetic trace from the paper's
// distributions instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"tcptrim/internal/sim"
	"tcptrim/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trimtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("trimtrace", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "trace file (default stdin)")
		gap  = fs.Duration("gap", 500*time.Microsecond, "inter-train gap threshold")
		demo = fs.Bool("demo", false, "analyze a synthetic demo trace")
		seed = fs.Int64("seed", 1, "seed for -demo")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var trace []workload.PacketRecord
	var err error
	switch {
	case *demo:
		trace = demoTrace(*seed)
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		trace, err = parseTrace(f)
	default:
		trace, err = parseTrace(stdin)
	}
	if err != nil {
		return err
	}
	if len(trace) == 0 {
		return fmt.Errorf("empty trace")
	}

	trains := workload.SplitTrains(trace, *gap)
	gaps := workload.Gaps(trains)
	var pkts, bytes, long int
	for _, tr := range trains {
		pkts += tr.Packets
		bytes += tr.Bytes
		if tr.IsLong() {
			long++
		}
	}
	fmt.Fprintf(stdout, "packets:      %d\n", pkts)
	fmt.Fprintf(stdout, "bytes:        %d\n", bytes)
	fmt.Fprintf(stdout, "trains:       %d\n", len(trains))
	fmt.Fprintf(stdout, "long trains:  %d (>= %d packets)\n", long, workload.LongTrainThresholdPackets)
	if len(trains) > 0 {
		fmt.Fprintf(stdout, "mean train:   %.1f packets, %.0f bytes\n",
			float64(pkts)/float64(len(trains)), float64(bytes)/float64(len(trains)))
	}
	if len(gaps) > 0 {
		var sum time.Duration
		minGap, maxGap := gaps[0], gaps[0]
		for _, g := range gaps {
			sum += g
			if g < minGap {
				minGap = g
			}
			if g > maxGap {
				maxGap = g
			}
		}
		fmt.Fprintf(stdout, "gaps:         n=%d mean=%v min=%v max=%v\n",
			len(gaps), (sum / time.Duration(len(gaps))).Round(time.Microsecond),
			minGap.Round(time.Microsecond), maxGap.Round(time.Microsecond))
	}
	return nil
}

// parseTrace reads "<time> <bytes>" lines.
func parseTrace(r io.Reader) ([]workload.PacketRecord, error) {
	var out []workload.PacketRecord
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want \"<time> <bytes>\", got %q", lineNo, line)
		}
		at, err := parseInstant(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("line %d: bad byte count %q", lineNo, fields[1])
		}
		out = append(out, workload.PacketRecord{At: at, Bytes: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseInstant(s string) (sim.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return sim.At(d), nil
	}
	if us, err := strconv.ParseFloat(s, 64); err == nil {
		return sim.At(time.Duration(us * float64(time.Microsecond))), nil
	}
	return 0, fmt.Errorf("bad timestamp %q", s)
}

// demoTrace synthesizes packet arrivals from the paper's PT size and gap
// distributions: each train's packets are spaced one serialization time
// apart at 1 Gbps.
func demoTrace(seed int64) []workload.PacketRecord {
	rng := rand.New(rand.NewSource(seed)) //nolint:gosec // demo data
	var out []workload.PacketRecord
	at := sim.Time(0)
	sizes := workload.PTSizes{}
	gapsDist := workload.PTGaps{}
	for i := 0; i < 300; i++ {
		remaining := sizes.Sample(rng)
		for remaining > 0 {
			pkt := 1500
			if remaining < 1460 {
				pkt = remaining + 40
			}
			out = append(out, workload.PacketRecord{At: at, Bytes: pkt})
			remaining -= pkt - 40
			at = at.Add(12 * time.Microsecond)
		}
		at = at.Add(gapsDist.Sample(rng))
	}
	return out
}
