package main

import (
	"strings"
	"testing"
	"time"

	"tcptrim/internal/sim"
)

func TestParseTrace(t *testing.T) {
	in := strings.NewReader(`
# comment
0us 1500
12us 1500
5ms 1500
5.012ms 1000
`)
	trace, err := parseTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("parsed %d records", len(trace))
	}
	if trace[2].At != sim.At(5*time.Millisecond) {
		t.Errorf("third record at %v", trace[2].At)
	}
	if trace[3].Bytes != 1000 {
		t.Errorf("fourth record bytes %d", trace[3].Bytes)
	}
}

func TestParseTraceBareMicroseconds(t *testing.T) {
	trace, err := parseTrace(strings.NewReader("100 1500\n250.5 40\n"))
	if err != nil {
		t.Fatal(err)
	}
	if trace[0].At != sim.At(100*time.Microsecond) {
		t.Errorf("record 0 at %v", trace[0].At)
	}
	if trace[1].At != sim.At(time.Duration(250.5*float64(time.Microsecond))) {
		t.Errorf("record 1 at %v", trace[1].At)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"justonefield\n",
		"10us notanumber\n",
		"10us -5\n",
		"whenever 1500\n",
	} {
		if _, err := parseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestRunDemo(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo"}, nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"packets:", "trains:", "long trains:", "gaps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStdin(t *testing.T) {
	in := strings.NewReader("0us 1500\n12us 1500\n5ms 1500\n")
	var sb strings.Builder
	if err := run(nil, in, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trains:       2") {
		t.Errorf("expected 2 trains:\n%s", sb.String())
	}
}

func TestRunEmptyTrace(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("empty trace should error")
	}
}

func TestDemoTraceDeterministic(t *testing.T) {
	a, b := demoTrace(3), demoTrace(3)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	if c := demoTrace(4); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}
