// Command trimsvc serves the experiment service: a REST control plane
// over the same runner registry trimsim uses, with live SSE metric
// streams and a content-addressed result cache.
//
//	trimsvc -addr :8089 &
//	curl -s localhost:8089/v1/runners | jq '.runners[].id'
//	curl -s -X POST localhost:8089/v1/runs -d '{"runner":"fig4"}'
//	curl -s -N localhost:8089/v1/runs/run-000001/events
//	curl -s localhost:8089/v1/runs/run-000001/result
//
// SIGINT/SIGTERM drain the service: in-flight runs get -drain to finish
// (canceled at the next sweep-cell boundary past it), SSE clients see a
// terminal event, and the cache index is persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcptrim/internal/cellcache"
	"tcptrim/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trimsvc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trimsvc", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8089", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS/2)")
	cacheDir := fs.String("cache", "", "persist results under this directory (default: in-memory only)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace for in-flight runs")
	force := fs.Bool("cache-force", false, "allow -cache without a VCS-stamped build (unsound across differing dev builds)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	version := service.CodeVersion()
	if *cacheDir != "" {
		if err := cellcache.ValidatePersistent(version, *force); err != nil {
			return err
		}
	}
	svc, err := service.New(service.Config{Workers: *workers, CacheDir: *cacheDir})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc}
	fmt.Printf("trimsvc: listening on http://%s (code version %s)\n", ln.Addr(), version)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("trimsvc: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	svcErr := svc.Shutdown(drainCtx)
	httpErr := httpSrv.Shutdown(drainCtx)
	if svcErr != nil {
		return svcErr
	}
	return httpErr
}
