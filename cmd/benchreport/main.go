// Command benchreport runs the repository benchmarks with -benchmem,
// aggregates the per-benchmark numbers, and writes a JSON report. When a
// baseline is supplied (raw `go test -bench` output or a previous report),
// the report also carries the baseline numbers and the relative delta, so
// a performance change ships with its evidence.
//
// Usage:
//
//	benchreport -out BENCH_1.json
//	benchreport -bench 'Fig8LargeScale' -count 3 -baseline before.txt
//	benchreport -parse after.txt -baseline before.txt -out BENCH_1.json
//	benchreport -baseline BENCH_5.json -gate 10
//
// With -gate N the command becomes a regression check: after writing the
// report it exits nonzero if any benchmark's ns/op regressed more than
// N percent against the baseline, printing one line per comparison so
// the offending benchmark is visible in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// tier1Benchmarks is the default set: the heaviest end-to-end experiment
// benchmarks that dominate a full run.
const tier1Benchmarks = "Fig1PacketTrains|Fig5Concurrency|Fig8LargeScale|Fig8MillionSmoke|Fig9Properties|Eq22KSweep"

// Result is one benchmark's aggregated measurement (mean across runs).
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Delta is the relative change vs the baseline, in percent (negative =
// improvement).
type Delta struct {
	NsPct     float64 `json:"ns_pct"`
	BytesPct  float64 `json:"bytes_pct"`
	AllocsPct float64 `json:"allocs_pct"`
}

// Entry pairs a current measurement with its optional baseline.
type Entry struct {
	Result
	Baseline *Result `json:"baseline,omitempty"`
	Delta    *Delta  `json:"delta,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Package    string  `json:"package"`
	BenchRegex string  `json:"bench_regex"`
	BenchTime  string  `json:"benchtime"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", tier1Benchmarks, "benchmark regex passed to go test -bench")
		benchtime = fs.String("benchtime", "1x", "value for go test -benchtime")
		count     = fs.Int("count", 3, "runs per benchmark (go test -count)")
		pkg       = fs.String("pkg", ".", "package to benchmark")
		out       = fs.String("out", "BENCH_1.json", "output JSON path")
		baseline  = fs.String("baseline", "", "baseline file: raw go-test bench output or a previous report")
		parse     = fs.String("parse", "", "parse this raw bench output instead of running go test")
		rawOut    = fs.String("raw", "", "also save the raw go test output here")
		gate      = fs.Float64("gate", 0, "fail (exit nonzero) if any benchmark's ns/op regressed more than this percent vs -baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var raw string
	if *parse != "" {
		b, err := os.ReadFile(*parse)
		if err != nil {
			return err
		}
		raw = string(b)
	} else {
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *bench, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg)
		cmd.Stderr = os.Stderr
		fmt.Fprintln(os.Stderr, "benchreport: running", strings.Join(cmd.Args, " "))
		b, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test: %w\n%s", err, b)
		}
		raw = string(b)
	}
	if *rawOut != "" {
		if err := os.WriteFile(*rawOut, []byte(raw), 0o644); err != nil {
			return err
		}
	}

	current, err := parseBench(raw)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}

	var base map[string]Result
	if *baseline != "" {
		base, err = loadBaseline(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if *gate > 0 && base == nil {
		return fmt.Errorf("-gate requires -baseline")
	}

	report := Report{Package: *pkg, BenchRegex: *bench, BenchTime: *benchtime}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := Entry{Result: current[name]}
		if b, ok := base[name]; ok {
			bl := b
			e.Baseline = &bl
			e.Delta = &Delta{
				NsPct:     pctChange(bl.NsPerOp, e.NsPerOp),
				BytesPct:  pctChange(bl.BytesPerOp, e.BytesPerOp),
				AllocsPct: pctChange(bl.AllocsPerOp, e.AllocsPerOp),
			}
		}
		report.Benchmarks = append(report.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	if *gate > 0 {
		return checkGate(report, *gate)
	}
	return nil
}

// checkGate compares every benchmark that has a baseline against the
// allowed ns/op regression and reports the verdict per benchmark.
// Benchmarks without a baseline entry (new ones) pass with a note; a
// missing current measurement for a baseline entry cannot happen here
// since the report is built from the current run.
func checkGate(report Report, gatePct float64) error {
	var failed []string
	for _, e := range report.Benchmarks {
		if e.Delta == nil {
			fmt.Fprintf(os.Stderr, "gate: %-20s no baseline, skipped\n", e.Name)
			continue
		}
		verdict := "ok"
		if e.Delta.NsPct > gatePct {
			verdict = "REGRESSED"
			failed = append(failed, e.Name)
		}
		fmt.Fprintf(os.Stderr, "gate: %-20s %12.0f ns/op vs %12.0f baseline  %+6.1f%%  %s\n",
			e.Name, e.NsPerOp, e.Baseline.NsPerOp, e.Delta.NsPct, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("gate: %d benchmark(s) regressed more than %.1f%% ns/op vs baseline: %s",
			len(failed), gatePct, strings.Join(failed, ", "))
	}
	fmt.Fprintf(os.Stderr, "gate: all benchmarks within %.1f%% of baseline\n", gatePct)
	return nil
}

func pctChange(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

// benchLine matches `BenchmarkName[-procs]  iterations  <value unit>...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts ns/op, B/op, and allocs/op from go test -bench
// output, averaging across repeated runs of the same benchmark.
func parseBench(raw string) (map[string]Result, error) {
	type acc struct {
		ns, bytes, allocs float64
		runs              int
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(strings.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[2])
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
		}
		a.runs++
		// Fields come in (value, unit) pairs; custom b.ReportMetric units
		// are skipped.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q for %s", fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytes += v
			case "allocs/op":
				a.allocs += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(accs))
	for name, a := range accs {
		n := float64(a.runs)
		out[name] = Result{
			Name:        name,
			Runs:        a.runs,
			NsPerOp:     a.ns / n,
			BytesPerOp:  a.bytes / n,
			AllocsPerOp: a.allocs / n,
		}
	}
	return out, nil
}

// loadBaseline accepts either a previous benchreport JSON or raw go-test
// bench output and returns per-benchmark results.
func loadBaseline(path string) (map[string]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, "{") {
		var r Report
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, err
		}
		out := make(map[string]Result, len(r.Benchmarks))
		for _, e := range r.Benchmarks {
			out[e.Name] = e.Result
		}
		return out, nil
	}
	return parseBench(string(b))
}
