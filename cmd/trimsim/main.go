// Command trimsim runs the paper-reproduction experiments and prints the
// tables/series each figure or table of the paper reports.
//
// Usage:
//
//	trimsim -list
//	trimsim -run fig9
//	trimsim -run fig8 -reps 10 -seed 7
//	trimsim -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcptrim/internal/aqm"
	"tcptrim/internal/cellcache"
	"tcptrim/internal/experiment"
	"tcptrim/internal/hybrid"
	"tcptrim/internal/tcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trimsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trimsim", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiment ids and exit")
		id     = fs.String("run", "", "experiment id to run (see -list)")
		all    = fs.Bool("all", false, "run every registered experiment")
		seed   = fs.Int64("seed", 1, "random seed")
		reps   = fs.Int("reps", 0, "repetitions for randomized scenarios (0 = default)")
		csvDir = fs.String("csv", "", "directory for CSV time-series export (fig4/fig6/fig9/fig10)")
		aqmSel = fs.String("aqm", "", "switch queue discipline override for fig4/fig6/resilience ("+
			strings.Join(aqm.Names(), ", ")+"; default: each scenario's drop-tail)")
		recSel = fs.String("recovery", "", "TCP loss-recovery policy override for resilience/recoverysweep ("+
			strings.Join(tcp.RecoveryNames(), ", ")+"; default: each scenario's classic)")
		shards = fs.Int("shards", 1, "parallel simulation shards per run (1 = sequential; "+
			"results are byte-identical at any count; more than GOMAXPROCS only adds overhead)")
		fidSel = fs.String("fidelity", "", "connection simulation fidelity for fig4/fig6/fig8/fig8million ("+
			strings.Join(hybrid.Names(), ", ")+"; default: packet, except fig8million which defaults to hybrid)")
		cacheDir = fs.String("cache", "", "cell-result cache directory: sweep cells already computed "+
			"(by any prior trimsim or trimsvc run at this code version) are reassembled instead of re-simulated")
		cacheForce = fs.Bool("cache-force", false, "allow -cache without a VCS-stamped build (unsound across differing dev builds)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		// Options.Validate treats 0 like 1; keep the CLI's stricter
		// historical contract.
		return fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
	}
	opts := experiment.Options{Seed: *seed, Reps: *reps, CSVDir: *csvDir, AQM: *aqmSel,
		Recovery: *recSel, Shards: *shards, Fidelity: *fidSel}
	// One consolidated gate (shared with the trimsvc REST API) checks
	// every option up front, so a typo fails before any simulation runs.
	if err := opts.Validate(); err != nil {
		return err
	}
	if *cacheDir != "" {
		// Same refusal rule as trimsvc -cache: a persistent store keyed
		// by an unstamped "dev" version would mix results from differing
		// builds. `go build` in a committed tree stamps the revision;
		// `go run` and dirty trees need -cache-force.
		if err := cellcache.ValidatePersistent(cellcache.CodeVersion(), *cacheForce); err != nil {
			return err
		}
		store, err := cellcache.Open(*cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = store
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}
	switch {
	case *list:
		return writeList(os.Stdout)
	case *all:
		for _, eid := range experiment.IDs() {
			fmt.Printf("### %s\n\n", eid)
			if err := experiment.Run(eid, opts, os.Stdout); err != nil {
				return fmt.Errorf("%s: %w", eid, err)
			}
		}
		return nil
	case *id != "":
		return experiment.Run(*id, opts, os.Stdout)
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run, -all is required")
	}
}

// writeList prints the runner registry as an aligned id/description
// table — the same ids and descriptions GET /v1/runners serves.
func writeList(w io.Writer) error {
	infos := experiment.Runners()
	width := 0
	for _, info := range infos {
		if len(info.ID) > width {
			width = len(info.ID)
		}
	}
	for _, info := range infos {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, info.ID, info.Description); err != nil {
			return err
		}
	}
	return nil
}
