package main

import (
	"strings"
	"testing"

	"tcptrim/internal/experiment"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteList: every registry id appears with its description — the
// same metadata the service serves at GET /v1/runners.
func TestWriteList(t *testing.T) {
	var buf strings.Builder
	if err := writeList(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	ids := experiment.IDs()
	if len(lines) != len(ids) {
		t.Fatalf("-list printed %d lines for %d runners", len(lines), len(ids))
	}
	for i, info := range experiment.Runners() {
		if !strings.HasPrefix(lines[i], info.ID) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], info.ID)
		}
		if !strings.Contains(lines[i], info.Description) {
			t.Errorf("line %d lacks the description of %s", i, info.ID)
		}
	}
}

// TestRunRejectsBadOptions: the consolidated Options.Validate gate runs
// before any simulation.
func TestRunRejectsBadOptions(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "fig4", "-aqm", "bogus"},
		{"-run", "fig4", "-recovery", "bogus"},
		{"-run", "fig4", "-fidelity", "bogus"},
		{"-run", "fig4", "-shards", "0"},
		{"-run", "fig8", "-reps", "-1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted invalid options", args)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
