package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
