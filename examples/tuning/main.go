// Tuning: explore the paper's Eq. 22 guideline for the delay threshold K.
//
// Five TCP-TRIM flows share a 1 Gbps bottleneck. The program sweeps K
// around the guideline value K* and prints the trade-off the analysis in
// Section III.B predicts: below K* the link is underutilized; above it,
// utilization is already full and extra K only buys standing queue.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"os"
	"time"

	"tcptrim"
	"tcptrim/internal/metrics"
)

const (
	flows   = 5
	baseRTT = 225 * time.Microsecond // queue-free RTT of the star
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	kStar := tcptrim.GuidelineKForLink(tcptrim.Gbps, 1500, baseRTT)
	fmt.Printf("guideline K* = %v for C = 1 Gbps, D = %v\n\n", kStar.Round(time.Microsecond), baseRTT)
	fmt.Printf("%6s  %10s  %12s  %10s  %6s\n", "K/K*", "K", "utilization", "avg queue", "drops")
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		k := time.Duration(factor * float64(kStar))
		util, queue, drops, err := measure(k)
		if err != nil {
			return err
		}
		fmt.Printf("%6.2f  %10v  %11.1f%%  %10.1f  %6d\n",
			factor, k.Round(time.Microsecond), util*100, queue, drops)
	}
	return nil
}

func measure(k time.Duration) (utilization, avgQueue float64, drops int, err error) {
	sched := tcptrim.NewScheduler()
	star := tcptrim.NewStar(sched, flows, tcptrim.DefaultStarLink(100))
	fleet, err := tcptrim.NewFleet(star.Net, tcptrim.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC: func() tcptrim.CongestionControl {
			return tcptrim.NewTrim(tcptrim.TrimConfig{K: k, BaseRTT: baseRTT})
		},
		Base: tcptrim.ConnConfig{
			MinRTO:   10 * time.Millisecond,
			LinkRate: tcptrim.Gbps,
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	start, stop := tcptrim.Time(100*time.Millisecond), tcptrim.Time(900*time.Millisecond)
	for _, srv := range fleet.Servers {
		if err := srv.StartBackgroundFlow(start, 1<<30); err != nil {
			return 0, 0, 0, err
		}
	}
	queue := star.Bottleneck.Queue()
	series := metrics.Sample(sched, start, stop, 100*time.Microsecond,
		func() float64 { return float64(queue.Len()) })
	sched.RunUntil(stop)

	window := stop.Sub(start).Seconds()
	goodput := float64(fleet.TotalDelivered()) * 8 / window
	ceiling := float64(tcptrim.Gbps) * 1460 / 1500
	return goodput / ceiling, series.Mean(), queue.Stats().Dropped, nil
}
