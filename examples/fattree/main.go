// Fattree: partition/aggregation traffic on a 4-pod fat-tree, comparing
// the four data-center transports of the paper's Fig. 12 (TCP, DCTCP,
// L2DCT, TCP-TRIM).
//
// One host per pod acts as a front-end; every other host sends 1 MB to a
// random front-end as a stream of small objects followed by one large
// object released simultaneously across the fleet — the incast moment
// where the inherited congestion windows collide.
//
//	go run ./examples/fattree
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"tcptrim"
	"tcptrim/internal/httpapp"
	"tcptrim/internal/metrics"
	"tcptrim/internal/netsim"
	"tcptrim/internal/topology"
)

const (
	pods       = 4
	totalBytes = 1 << 20
	seed       = 7
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fattree:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%-8s  %10s  %10s  %9s\n", "policy", "mean CT", "max CT", "timeouts")
	for _, policy := range []struct {
		name string
		ecn  bool
		mk   func() tcptrim.CongestionControl
	}{
		{"TCP", false, tcptrim.NewReno},
		{"DCTCP", true, tcptrim.NewDCTCP},
		{"L2DCT", true, tcptrim.NewL2DCT},
		{"TRIM", false, func() tcptrim.CongestionControl {
			return tcptrim.NewTrim(tcptrim.TrimConfig{BaseRTT: 128 * time.Microsecond})
		}},
	} {
		mean, max, timeouts, err := aggregate(policy.mk, policy.ecn)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %10v  %10v  %9d\n", policy.name,
			mean.Round(10*time.Microsecond), max.Round(10*time.Microsecond), timeouts)
	}
	return nil
}

func aggregate(mk func() tcptrim.CongestionControl, ecn bool) (mean, max time.Duration, timeouts int, err error) {
	rng := rand.New(rand.NewSource(seed)) //nolint:gosec // reproducible example
	sched := tcptrim.NewScheduler()
	link := tcptrim.LinkConfig{
		Rate:  10 * tcptrim.Gbps,
		Delay: 10 * time.Microsecond,
		Queue: tcptrim.QueueConfig{CapBytes: 350 << 10, ECNThresholdPackets: 65},
	}
	ft, err := topology.NewFatTree(sched, pods, link)
	if err != nil {
		return 0, 0, 0, err
	}
	n := len(ft.Hosts)
	stacks := make([]*tcptrim.Stack, n)
	for i, h := range ft.Hosts {
		stacks[i] = tcptrim.NewStack(ft.Net, h)
	}
	perPod := n / pods
	frontEnds := make([]int, pods)
	for p := range frontEnds {
		frontEnds[p] = p * perPod
	}
	isFE := func(i int) bool { return i%perPod == 0 }

	collector := &httpapp.Collector{}
	var conns []*tcptrim.Conn
	for i := range ft.Hosts {
		if isFE(i) {
			continue
		}
		sink := frontEnds[rng.Intn(len(frontEnds))]
		conn, err := tcptrim.NewConn(tcptrim.ConnConfig{
			Sender:   stacks[i],
			Receiver: stacks[sink],
			Flow:     netsim.FlowID(i + 1),
			CC:       mk(),
			ECN:      ecn,
			MinRTO:   10 * time.Millisecond,
			LinkRate: 10 * tcptrim.Gbps,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		conns = append(conns, conn)
		srv := httpapp.NewServer(sched, conn, fmt.Sprintf("h%d", i), collector)
		sent := 0
		at := tcptrim.Time(100 * time.Millisecond)
		for sent < totalBytes/2 {
			size := 2048 + rng.Intn(4096)
			if err := srv.ScheduleResponse(at, size); err != nil {
				return 0, 0, 0, err
			}
			sent += size
			at = at.Add(time.Duration(rng.ExpFloat64() * float64(100*time.Microsecond)))
		}
		if err := srv.ScheduleResponse(tcptrim.Time(500*time.Millisecond), totalBytes-sent); err != nil {
			return 0, 0, 0, err
		}
	}
	sched.RunUntil(tcptrim.Time(5 * time.Second))

	var d metrics.Distribution
	for _, r := range collector.Responses() {
		d.AddDuration(r.CompletionTime())
	}
	for _, c := range conns {
		timeouts += c.Stats().Timeouts
	}
	return secondsDur(d.Mean()), secondsDur(d.Max()), timeouts, nil
}

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
