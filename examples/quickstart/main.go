// Quickstart: the paper's core phenomenon in ~80 lines.
//
// Five servers share a 1 Gbps switch with a 100-packet buffer. Each
// builds up its congestion window with a stream of small HTTP responses,
// goes idle, and then sends one long response. Plain TCP inherits the
// stale window and drowns the switch; TCP-TRIM probes first.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"tcptrim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, policy := range []string{"TCP", "TCP-TRIM"} {
		timeouts, completion, err := demo(policy)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  long-response completion %8v   timeouts %d\n",
			policy, completion.Round(100*time.Microsecond), timeouts)
	}
	return nil
}

func demo(policy string) (timeouts int, completion time.Duration, err error) {
	sched := tcptrim.NewScheduler()
	star := tcptrim.NewStar(sched, 5, tcptrim.DefaultStarLink(100))

	newCC := func() tcptrim.CongestionControl { return tcptrim.NewReno() }
	if policy == "TCP-TRIM" {
		newCC = func() tcptrim.CongestionControl { return tcptrim.NewTrim(tcptrim.TrimConfig{}) }
	}
	fleet, err := tcptrim.NewFleet(star.Net, tcptrim.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    newCC,
		Base: tcptrim.ConnConfig{
			MinRTO:   200 * time.Millisecond,
			LinkRate: tcptrim.Gbps,
		},
	})
	if err != nil {
		return 0, 0, err
	}

	// Phase 1: 200 small responses per server, 1 ms apart, growing the
	// congestion windows without ever congesting the switch.
	for _, srv := range fleet.Servers {
		for i := 0; i < 200; i++ {
			at := tcptrim.Time(time.Duration(100+i) * time.Millisecond)
			if err := srv.ScheduleResponse(at, 6000); err != nil {
				return 0, 0, err
			}
		}
	}

	// Phase 2: after ~100 ms of idle, every server sends a 200 KB
	// response at the same instant.
	var worst time.Duration
	for _, srv := range fleet.Servers {
		conn := srv.Conn()
		if _, err := sched.At(tcptrim.Time(400*time.Millisecond), func() {
			conn.SendTrain(200<<10, func(r tcptrim.TrainResult) {
				if ct := r.CompletionTime(); ct > worst {
					worst = ct
				}
			})
		}); err != nil {
			return 0, 0, err
		}
	}

	sched.RunUntil(tcptrim.Time(2 * time.Second))
	return fleet.TotalTimeouts(), worst, nil
}
