// Tracing: observe a single connection's lifecycle through the trace
// recorder — the inherited-window story of Fig. 4, event by event.
//
// A persistent connection grows its window with small responses, idles,
// then sends a long response. With plain TCP the trace shows the burst,
// the dup-ACK storm, the recoveries, and the timeout; with TCP-TRIM it
// shows a quiet probe exchange instead.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"os"
	"time"

	"tcptrim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracing:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, policy := range []string{"TCP", "TCP-TRIM"} {
		rec, err := traceRun(policy)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %s\n", policy, rec.Summary())
		// Show the first few events after the long train's release.
		shown := 0
		for _, ev := range rec.Events() {
			if ev.At < tcptrim.Time(400*time.Millisecond) || shown >= 6 {
				continue
			}
			shown++
			fmt.Printf("  %-12v %-14s cwnd=%-7.1f flight=%d\n",
				ev.At, ev.Kind, ev.Cwnd, ev.Flight)
		}
	}
	return nil
}

func traceRun(policy string) (*tcptrim.Recorder, error) {
	sched := tcptrim.NewScheduler()
	star := tcptrim.NewStar(sched, 2, tcptrim.DefaultStarLink(40))
	rec := tcptrim.NewRecorder(0)

	var ccPolicy tcptrim.CongestionControl = tcptrim.NewReno()
	if policy == "TCP-TRIM" {
		ccPolicy = tcptrim.NewTrim(tcptrim.TrimConfig{})
	}
	conn, err := tcptrim.NewConn(tcptrim.ConnConfig{
		Sender:   tcptrim.NewStack(star.Net, star.Senders[0]),
		Receiver: tcptrim.NewStack(star.Net, star.FrontEnd),
		Flow:     1,
		CC:       ccPolicy,
		MinRTO:   200 * time.Millisecond,
		LinkRate: tcptrim.Gbps,
		Observer: rec,
	})
	if err != nil {
		return nil, err
	}
	// Window growth phase: small responses every millisecond.
	for i := 0; i < 250; i++ {
		at := tcptrim.Time(time.Duration(100+i) * time.Millisecond)
		if _, err := sched.At(at, func() { conn.SendTrain(6000, nil) }); err != nil {
			return nil, err
		}
	}
	// Idle, then the long response.
	if _, err := sched.At(tcptrim.Time(400*time.Millisecond), func() {
		conn.SendTrain(300<<10, nil)
	}); err != nil {
		return nil, err
	}
	sched.RunUntil(tcptrim.Time(2 * time.Second))
	return rec, nil
}
