// Svcclient: a minimal client for the trimsvc experiment service.
//
// Boot the service, then submit a run, follow its live SSE metric
// stream, and print the final result:
//
//	trimsvc -addr 127.0.0.1:8089 &
//	go run ./examples/svcclient -svc http://127.0.0.1:8089 -runner fig4
//
// The client is plain net/http — the service speaks JSON over REST and
// server-sent events, nothing more exotic.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "svcclient:", err)
		os.Exit(1)
	}
}

func run() error {
	svc := flag.String("svc", "http://127.0.0.1:8089", "trimsvc base URL")
	runner := flag.String("runner", "fig4", "experiment id (see trimsim -list)")
	seed := flag.Int64("seed", 0, "random seed (0 = default)")
	shards := flag.Int("shards", 0, "simulation shards (0 = sequential)")
	flag.Parse()

	// Submit.
	spec := map[string]any{"runner": *runner}
	if *seed != 0 {
		spec["seed"] = *seed
	}
	if *shards > 1 {
		spec["shards"] = *shards
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(*svc+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: %s (%s)", resp.Status, job.Error)
	}
	fmt.Printf("run %s: %s (cached=%t)\n", job.ID, job.State, job.Cached)

	// Follow the SSE stream until the terminal event; the replay buffer
	// means attaching late (or to a cached run) still shows the history.
	events, err := http.Get(*svc + "/v1/runs/" + job.ID + "/events")
	if err != nil {
		return err
	}
	defer events.Body.Close()
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Kind  string  `json:"kind"`
			Name  string  `json:"name"`
			At    float64 `json:"at"`
			Value float64 `json:"value"`
			Done  int     `json:"done"`
			Total int     `json:"total"`
			Error string  `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue
		}
		switch ev.Kind {
		case "sample":
			fmt.Printf("  t=%8.4fs  %-22s %10.2f\n", ev.At, ev.Name, ev.Value)
		case "responses":
			fmt.Printf("  t=%8.4fs  responses completed    %10.0f\n", ev.At, ev.Value)
		case "cell":
			fmt.Printf("  cell %d/%d done: %s\n", ev.Done, ev.Total, ev.Name)
		case "fct", "retrans":
			fmt.Printf("  %s milestone for %s\n", ev.Kind, ev.Name)
		case "done":
			fmt.Println("  run complete")
		case "error", "canceled", "shutdown":
			return fmt.Errorf("run ended: %s %s", ev.Kind, ev.Error)
		}
	}

	// Fetch the result — byte-identical to trimsim -run with the same
	// options.
	result, err := http.Get(*svc + "/v1/runs/" + job.ID + "/result")
	if err != nil {
		return err
	}
	defer result.Body.Close()
	if result.StatusCode != http.StatusOK {
		return fmt.Errorf("result: %s", result.Status)
	}
	_, err = io.Copy(os.Stdout, result.Body)
	return err
}
