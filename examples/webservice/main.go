// Webservice: the Section IV.D web-service scenario.
//
// Four back-end servers send 1000 HTTP responses each to a front-end
// over 1 Gbps links, with response sizes and think times drawn from the
// paper's measured distributions (Fig. 2). The program compares CUBIC,
// Reno, and TCP-TRIM on average and tail response completion time.
//
//	go run ./examples/webservice
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"tcptrim"
	"tcptrim/internal/metrics"
	"tcptrim/internal/workload"
)

const (
	servers       = 4
	responsesEach = 1000
	seed          = 42
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webservice:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%-8s  %10s  %10s  %10s  %12s\n", "policy", "ARCT", "P99", "max", "frac<=25ms")
	for _, policy := range []struct {
		name string
		mk   func() tcptrim.CongestionControl
	}{
		{"CUBIC", tcptrim.NewCubic},
		{"Reno", tcptrim.NewReno},
		{"TRIM", func() tcptrim.CongestionControl { return tcptrim.NewTrim(tcptrim.TrimConfig{}) }},
	} {
		d, err := serve(policy.mk)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %10v  %10v  %10v  %11.1f%%\n",
			policy.name,
			seconds(d.Mean()), seconds(d.Percentile(99)), seconds(d.Max()),
			100*d.FractionBelow((25*time.Millisecond).Seconds()))
	}
	return nil
}

func serve(mk func() tcptrim.CongestionControl) (*metrics.Distribution, error) {
	rng := rand.New(rand.NewSource(seed)) //nolint:gosec // reproducible example
	sched := tcptrim.NewScheduler()
	star := tcptrim.NewStar(sched, servers, tcptrim.DefaultStarLink(100))
	fleet, err := tcptrim.NewFleet(star.Net, tcptrim.FleetConfig{
		Senders:  star.Senders,
		FrontEnd: star.FrontEnd,
		NewCC:    mk,
		Base: tcptrim.ConnConfig{
			MinRTO:   200 * time.Millisecond,
			LinkRate: tcptrim.Gbps,
		},
	})
	if err != nil {
		return nil, err
	}
	for _, srv := range fleet.Servers {
		trains := workload.ScheduleCount(rng, tcptrim.Time(100*time.Millisecond),
			responsesEach, workload.PTSizes{}, workload.PTGaps{})
		if err := srv.ScheduleTrains(trains); err != nil {
			return nil, err
		}
	}
	sched.RunUntil(tcptrim.Time(60 * time.Second))

	var d metrics.Distribution
	for _, r := range fleet.Collector.Responses() {
		d.AddDuration(r.CompletionTime())
	}
	if got := d.Count(); got != servers*responsesEach {
		return nil, fmt.Errorf("only %d of %d responses completed", got, servers*responsesEach)
	}
	return &d, nil
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
}
